"""Tests for the storage policies: regions, ext4, band-aligned, dynamic-band."""

import pytest

from repro.core.storage import DynamicBandStorage
from repro.errors import (
    AllocationError,
    FileNotFoundStorageError,
    StorageError,
)
from repro.fs.ext4sim import Ext4Allocator, Ext4Storage
from repro.fs.storage import BandAlignedStorage, LogRegion, Storage
from repro.smr.drive import ConventionalDrive
from repro.smr.extent import Extent
from repro.smr.fixed_band import FixedBandSMRDrive
from repro.smr.raw_hmsmr import RawHMSMRDrive

KiB = 1024
MiB = 1024 * 1024


def ext4(capacity=4 * MiB, **kwargs):
    drive = ConventionalDrive(capacity)
    return Ext4Storage(drive, wal_size=32 * KiB, meta_size=32 * KiB,
                       block_size=1 * KiB, **kwargs)


def band_storage(capacity=4 * MiB, band=64 * KiB):
    drive = FixedBandSMRDrive(capacity, band)
    return BandAlignedStorage(drive, band_size=band, wal_size=64 * KiB,
                              meta_size=64 * KiB)


def dyn_storage(capacity=4 * MiB, guard=4 * KiB):
    drive = RawHMSMRDrive(capacity, guard_size=guard)
    return DynamicBandStorage(drive, wal_size=32 * KiB, meta_size=32 * KiB,
                              class_unit=4 * KiB)


class TestLogRegion:
    def test_append_read_reset(self):
        drive = ConventionalDrive(MiB)
        region = LogRegion(drive, 0, 16 * KiB, "wal")
        region.append(b"one")
        region.append(b"two")
        assert region.read_all() == b"onetwo"
        region.reset()
        assert region.read_all() == b""
        region.append(b"three")
        assert region.read_all() == b"three"

    def test_overflow(self):
        drive = ConventionalDrive(MiB)
        region = LogRegion(drive, 0, 1 * KiB, "wal")
        with pytest.raises(AllocationError):
            region.append(b"x" * 2048)

    def test_does_not_fit_drive(self):
        drive = ConventionalDrive(KiB)
        with pytest.raises(StorageError):
            LogRegion(drive, 0, 2 * KiB, "wal")


class TestMetaLog:
    def test_records_roundtrip(self):
        s = ext4()
        s.append_meta_record(Storage.META_SNAPSHOT, b"snap")
        s.append_meta_record(Storage.META_EDIT, b"edit1")
        s.append_meta_record(Storage.META_EDIT, b"edit2")
        assert s.read_meta_records() == [
            (Storage.META_SNAPSHOT, b"snap"),
            (Storage.META_EDIT, b"edit1"),
            (Storage.META_EDIT, b"edit2"),
        ]

    def test_reset(self):
        s = ext4()
        s.append_meta_record(Storage.META_EDIT, b"x")
        s.reset_meta()
        s.append_meta_record(Storage.META_SNAPSHOT, b"snap")
        assert s.read_meta_records() == [(Storage.META_SNAPSHOT, b"snap")]

    def test_reset_switches_slots(self):
        s = ext4()
        first = s.meta_region
        s.append_meta_record(Storage.META_SNAPSHOT, b"old")
        s.reset_meta()
        assert s.meta_region is not first
        s.reset_meta()
        assert s.meta_region is first

    def test_incomplete_rollover_falls_back_to_old_slot(self):
        # A crash after reset_meta but before the fresh snapshot lands
        # must recover the previous manifest, not an empty one.
        s = ext4()
        s.append_meta_record(Storage.META_SNAPSHOT, b"snap")
        s.append_meta_record(Storage.META_EDIT, b"edit")
        s.reset_meta()
        assert s.read_meta_records() == [
            (Storage.META_SNAPSHOT, b"snap"),
            (Storage.META_EDIT, b"edit"),
        ]
        # ... and the fallback is sticky: appends go to the old slot
        s.append_meta_record(Storage.META_EDIT, b"edit2")
        assert s.read_meta_records()[-1] == (Storage.META_EDIT, b"edit2")

    def test_torn_meta_tail_is_tolerated_and_flagged(self):
        s = ext4()
        s.append_meta_record(Storage.META_SNAPSHOT, b"snap")
        frame = Storage._meta_frame(Storage.META_EDIT, b"never-finished")
        s.meta_region.append(frame[: len(frame) - 4])  # torn append
        assert s.read_meta_records() == [(Storage.META_SNAPSHOT, b"snap")]
        assert s.meta_log_damaged()

    def test_crc_violation_detected(self):
        s = ext4()
        s.append_meta_record(Storage.META_EDIT, b"payload")
        # corrupt the payload in place on the raw device
        s.drive._data[s.meta_region.start + 9] ^= 0xFF
        with pytest.raises(StorageError):
            s.read_meta_records()


class _CommonStorageTests:
    """Behavioural contract every placement policy must satisfy."""

    def make(self):
        raise NotImplementedError

    def _file_bytes(self, n=10 * KiB, fill=b"a"):
        return fill * n

    def test_write_read_roundtrip(self):
        s = self.make()
        data = bytes(range(256)) * 40
        s.write_file("f1", data)
        assert s.read_file("f1", 0, len(data)) == data
        assert s.read_file("f1", 100, 50) == data[100:150]
        assert s.file_size("f1") == len(data)

    def test_duplicate_rejected(self):
        s = self.make()
        s.write_file("f1", self._file_bytes())
        with pytest.raises(StorageError):
            s.write_file("f1", self._file_bytes())

    def test_missing_file(self):
        s = self.make()
        with pytest.raises(FileNotFoundStorageError):
            s.read_file("ghost", 0, 1)
        with pytest.raises(FileNotFoundStorageError):
            s.delete_file("ghost")
        assert not s.exists("ghost")

    def test_read_past_end(self):
        s = self.make()
        s.write_file("f1", self._file_bytes(1 * KiB))
        with pytest.raises(StorageError):
            s.read_file("f1", 512, 1 * KiB)

    def test_delete_frees_name(self):
        s = self.make()
        s.write_file("f1", self._file_bytes())
        s.delete_file("f1")
        assert not s.exists("f1")
        assert "f1" not in s.list_files()

    def test_space_reuse_after_delete(self):
        s = self.make()
        for round_ in range(12):
            name = f"f{round_}"
            s.write_file(name, self._file_bytes(32 * KiB))
            s.delete_file(name)
        # twelve 32 KiB files through a small device only works if space
        # is actually reclaimed

    def test_write_files_group(self):
        s = self.make()
        group = [(f"g{i}", self._file_bytes(4 * KiB, bytes([i + 65])))
                 for i in range(3)]
        s.write_files(group)
        for name, data in group:
            assert s.read_file(name, 0, len(data)) == data

    def test_extents_cover_file(self):
        s = self.make()
        s.write_file("f1", self._file_bytes(10 * KiB))
        extents = s.file_extents("f1")
        assert sum(e.length for e in extents) >= 10 * KiB

    def test_stream_matches_write_file(self):
        s = self.make()
        data = bytes(range(256)) * 64
        stream = s.create_stream("st", chunk_size=4 * KiB)
        for i in range(0, len(data), 1000):
            stream.append(data[i : i + 1000])
        size = stream.close()
        assert size == len(data)
        assert s.read_file("st", 0, len(data)) == data


class TestExt4Storage(_CommonStorageTests):
    def make(self):
        return ext4()

    def test_files_scatter_after_churn(self):
        """Deleted holes are reused: later files land at earlier offsets."""
        s = ext4()
        for i in range(6):
            s.write_file(f"a{i}", self._file_bytes(16 * KiB))
        first_extent = s.file_extents("a2")[0]
        s.delete_file("a2")
        s.write_file("b", self._file_bytes(8 * KiB))
        assert s.file_extents("b")[0].start == first_extent.start

    def test_fragmented_allocation(self):
        s = ext4(capacity=448 * KiB)
        # fill the device, then punch small holes, then allocate big
        names = []
        for i in range(14):
            name = f"f{i}"
            s.write_file(name, self._file_bytes(24 * KiB))
            names.append(name)
        for name in names[::2]:
            s.delete_file(name)
        s.write_file("big", self._file_bytes(60 * KiB))
        assert len(s.file_extents("big")) > 1  # fragmented

    def test_contiguous_groups_mode(self):
        s = ext4(contiguous_groups=True)
        # create churn so individual allocations would scatter
        for i in range(8):
            s.write_file(f"x{i}", self._file_bytes(8 * KiB))
        for i in range(0, 8, 2):
            s.delete_file(f"x{i}")
        group = [(f"g{i}", self._file_bytes(8 * KiB)) for i in range(3)]
        s.write_files(group)
        extents = [s.file_extents(f"g{i}")[0] for i in range(3)]
        assert extents[0].end == extents[1].start
        assert extents[1].end == extents[2].start

    def test_out_of_space(self):
        s = ext4(capacity=256 * KiB)
        with pytest.raises(AllocationError):
            s.write_file("huge", self._file_bytes(400 * KiB))


class TestExt4Allocator:
    def test_allocate_at(self):
        a = Ext4Allocator(0, 64 * KiB, block_size=1 * KiB)
        first = a.allocate(4 * KiB)[0]
        grown = a.allocate_at(first.end, 4 * KiB)
        assert grown == Extent(first.end, first.end + 4 * KiB)
        assert a.allocate_at(first.start, 1 * KiB) is None  # taken

    def test_block_rounding(self):
        a = Ext4Allocator(0, 64 * KiB, block_size=1 * KiB)
        ext = a.allocate(1500)[0]
        assert ext.length == 2 * KiB

    def test_free_bytes(self):
        a = Ext4Allocator(0, 64 * KiB, block_size=1 * KiB)
        before = a.free_bytes()
        extents = a.allocate(8 * KiB)
        assert a.free_bytes() == before - 8 * KiB
        a.release(extents)
        assert a.free_bytes() == before


class TestBandAlignedStorage(_CommonStorageTests):
    def make(self):
        return band_storage()

    def test_file_per_band(self):
        s = band_storage()
        s.write_file("f1", self._file_bytes(30 * KiB))
        s.write_file("f2", self._file_bytes(30 * KiB))
        e1, e2 = s.file_extents("f1")[0], s.file_extents("f2")[0]
        assert e1.start % s.band_size == 0
        assert e2.start % s.band_size == 0
        assert e1.start != e2.start

    def test_oversized_file_rejected(self):
        s = band_storage()
        with pytest.raises(AllocationError):
            s.write_file("big", self._file_bytes(65 * KiB))

    def test_no_rmw_ever(self):
        """Dedicated-band placement never writes below a frontier."""
        s = band_storage()
        for i in range(20):
            s.write_file(f"f{i}", self._file_bytes(30 * KiB))
            if i % 2:
                s.delete_file(f"f{i}")
                s.write_file(f"f{i}b", self._file_bytes(20 * KiB))
        assert s.drive.stats.rmw_count == 0

    def test_stream_respects_band_limit(self):
        s = band_storage()
        stream = s.create_stream("big", chunk_size=4 * KiB)
        with pytest.raises(AllocationError):
            for _ in range(20):
                stream.append(b"x" * 8 * KiB)


class TestZoneStorageContract(_CommonStorageTests):
    """The zoned policy satisfies the same behavioural contract."""

    def make(self):
        from repro.fs.zonefs import ZoneStorage
        from repro.smr.zoned import ZonedDrive

        drive = ZonedDrive(4 * MiB, 128 * KiB)
        return ZoneStorage(drive, wal_size=64 * KiB, meta_size=64 * KiB)


class TestDynamicBandStorage(_CommonStorageTests):
    def make(self):
        return dyn_storage()

    def test_group_written_contiguously(self):
        s = dyn_storage()
        group = [(f"g{i}", b"x" * 6 * KiB) for i in range(4)]
        s.write_files(group)
        extents = [s.file_extents(f"g{i}")[0] for i in range(4)]
        for a, b in zip(extents, extents[1:]):
            assert a.end == b.start
        info = s.sets.set_of("g0")
        assert info is not None and info.num_members == 4

    def test_space_reclaimed_only_when_set_fades(self):
        s = dyn_storage()
        group = [(f"g{i}", b"x" * 8 * KiB) for i in range(3)]
        s.write_files(group)
        allocated = s.manager.allocated_bytes()
        s.delete_file("g0")
        s.delete_file("g1")
        assert s.manager.allocated_bytes() == allocated  # still held
        s.delete_file("g2")
        assert s.manager.allocated_bytes() < allocated   # whole set freed

    def test_group_invalid_count(self):
        s = dyn_storage()
        s.write_files([(f"g{i}", b"x" * 4 * KiB) for i in range(3)])
        assert s.group_invalid_count("g1") == 0
        s.delete_file("g0")
        assert s.group_invalid_count("g1") == 1

    def test_never_violates_shingle_safety(self):
        """Heavy churn through the manager never trips the drive check."""
        s = dyn_storage(capacity=2 * MiB)
        live = []
        for i in range(60):
            name = f"f{i}"
            try:
                s.write_file(name, bytes([i % 251]) * ((i % 5 + 1) * 4 * KiB))
            except AllocationError:
                break
            live.append(name)
            if i % 3 == 2:
                s.delete_file(live.pop(0))
        s.manager.check_invariants()

    def test_deleted_member_unreadable(self):
        s = dyn_storage()
        s.write_files([("a", b"x" * 4 * KiB), ("b", b"y" * 4 * KiB)])
        s.delete_file("a")
        with pytest.raises(FileNotFoundStorageError):
            s.read_file("a", 0, 1)
        assert s.read_file("b", 0, 1) == b"y"
