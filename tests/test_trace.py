"""Tests for the trace record/replay layer."""

import pathlib

import pytest

from repro.errors import ReproError
from repro.harness.runner import make_store
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.trace import (
    ChurnTraceGenerator,
    TraceOp,
    TraceRecorder,
    load_trace,
    replay,
    save_trace,
)

from tests.conftest import TEST_PROFILE


class TestTraceOpCodec:
    def test_put_roundtrip(self):
        op = TraceOp("P", b"key\x00bin", b"value\xff")
        assert TraceOp.decode(op.encode()) == op

    def test_delete_get_scan_roundtrip(self):
        for op in (TraceOp("D", b"k"), TraceOp("G", b"k"),
                   TraceOp("S", b"k", limit=25)):
            assert TraceOp.decode(op.encode()) == op

    def test_bad_lines_rejected(self):
        with pytest.raises(ReproError):
            TraceOp.decode("")
        with pytest.raises(ReproError):
            TraceOp.decode("X abc")
        with pytest.raises(ReproError):
            TraceOp.decode("P onlykey")

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(ReproError):
            TraceOp("Z", b"k").encode()


class TestSaveLoad:
    def test_file_roundtrip(self, tmp_path: pathlib.Path):
        ops = [TraceOp("P", b"a", b"1"), TraceOp("G", b"a"),
               TraceOp("S", b"", limit=5), TraceOp("D", b"a")]
        path = tmp_path / "ops.trace"
        assert save_trace(ops, path) == 4
        assert list(load_trace(path)) == ops

    def test_comments_and_blanks_skipped(self, tmp_path: pathlib.Path):
        path = tmp_path / "ops.trace"
        path.write_text("# header\n\n" + TraceOp("G", b"k").encode() + "\n")
        assert list(load_trace(path)) == [TraceOp("G", b"k")]


class TestRecorderAndReplay:
    def test_recorded_trace_replays_identically(self):
        recorder = TraceRecorder(make_store("sealdb", TEST_PROFILE))
        recorder.put(b"a", b"1")
        recorder.put(b"b", b"2")
        recorder.delete(b"a")
        assert recorder.get(b"b") == b"2"
        list(recorder.scan(b"a", limit=3))

        # replay on a fresh store reproduces the same end state
        fresh = make_store("sealdb", TEST_PROFILE)
        result = replay(fresh, recorder.trace)
        assert result.ops == 5
        assert result.puts == 2 and result.deletes == 1
        assert result.gets == 1 and result.scans == 1
        assert fresh.get(b"a") is None
        assert fresh.get(b"b") == b"2"

    def test_replay_counts_hits(self):
        store = make_store("sealdb", TEST_PROFILE)
        ops = [TraceOp("P", b"k", b"v"), TraceOp("G", b"k"),
               TraceOp("G", b"missing")]
        result = replay(store, ops)
        assert result.get_hits == 1

    def test_recorder_proxies_store_attrs(self):
        recorder = TraceRecorder(make_store("sealdb", TEST_PROFILE))
        assert recorder.name == "SEALDB"
        recorder.put(b"x", b"y")
        recorder.flush()           # proxied
        assert recorder.wa() >= 0  # proxied metric


class TestChurnGenerator:
    def _gen(self, **kw):
        kv = KeyValueGenerator(16, 32)
        return ChurnTraceGenerator(kv, working_set=100, drift=50,
                                   ops_per_phase=200, seed=1, **kw)

    def test_generates_requested_count(self):
        ops = list(self._gen().generate(650))
        assert len(ops) == 650
        kinds = {op.kind for op in ops}
        assert kinds <= {"P", "D"}
        assert "P" in kinds

    def test_working_set_drifts(self):
        gen = self._gen()
        ops = list(gen.generate(600))   # 3 phases
        early_keys = {op.key for op in ops[:200]}
        late_keys = {op.key for op in ops[400:]}
        assert early_keys != late_keys  # the window moved

    def test_deterministic(self):
        a = [op.encode() for op in self._gen().generate(300)]
        b = [op.encode() for op in self._gen().generate(300)]
        assert a == b

    def test_churn_ages_a_store(self):
        store = make_store("sealdb", TEST_PROFILE)
        result = replay(store, self._gen().generate(6000))
        assert result.puts > 0 and result.deletes > 0
        store.flush()
        store.db.check_invariants()
        # churn leaves dead space pinned inside live sets
        assert store.set_registry.dead_bytes() >= 0
