"""Tests for the workload key-choice distributions."""

import numpy as np
import pytest

from repro.workloads.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)


class TestUniform:
    def test_range(self):
        g = UniformGenerator(100, seed=1)
        samples = [g.next() for _ in range(2000)]
        assert min(samples) >= 0 and max(samples) < 100

    def test_roughly_uniform(self):
        g = UniformGenerator(10, seed=2)
        counts = np.bincount([g.next() for _ in range(20000)], minlength=10)
        assert counts.min() > 1500 and counts.max() < 2500

    def test_deterministic(self):
        a = [UniformGenerator(50, seed=7).next() for _ in range(10)]
        b = [UniformGenerator(50, seed=7).next() for _ in range(10)]
        assert a == b

    def test_bad_count(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestZipfian:
    def test_range(self):
        g = ZipfianGenerator(1000, seed=1)
        samples = [g.next() for _ in range(5000)]
        assert min(samples) >= 0 and max(samples) < 1000

    def test_skew_towards_zero(self):
        g = ZipfianGenerator(1000, seed=3)
        samples = [g.next() for _ in range(20000)]
        zero_share = samples.count(0) / len(samples)
        # item 0 is the hottest: far above uniform 0.1%
        assert zero_share > 0.03
        # top-10 items dominate
        top10 = sum(1 for s in samples if s < 10) / len(samples)
        assert top10 > 0.25

    def test_large_keyspace_constructs_fast(self):
        g = ZipfianGenerator(25_000_000, seed=1)
        assert 0 <= g.next() < 25_000_000

    def test_monotone_rank_frequency(self):
        g = ZipfianGenerator(100, seed=5)
        counts = np.bincount([g.next() for _ in range(40000)], minlength=100)
        # frequency should broadly decrease with rank
        assert counts[0] > counts[10] > counts[50]

    def test_bad_theta(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


class TestScrambledZipfian:
    def test_range_and_spread(self):
        g = ScrambledZipfianGenerator(1000, seed=1)
        samples = [g.next() for _ in range(10000)]
        assert min(samples) >= 0 and max(samples) < 1000
        # hashing spreads the hot items: item 0 is no longer the mode
        # but *some* items are still hot (zipfian popularity preserved)
        counts = np.bincount(samples, minlength=1000)
        assert counts.max() > 5 * counts.mean()

    def test_hot_item_not_sequential(self):
        g = ScrambledZipfianGenerator(1000, seed=2)
        counts = np.bincount([g.next() for _ in range(20000)], minlength=1000)
        hot = int(np.argmax(counts))
        assert hot != 0  # scrambled away from rank order


class TestLatest:
    def test_skew_towards_newest(self):
        g = LatestGenerator(1000, seed=1)
        samples = [g.next() for _ in range(10000)]
        assert max(samples) == 999
        recent = sum(1 for s in samples if s > 900) / len(samples)
        assert recent > 0.4

    def test_advance_moves_the_hot_spot(self):
        g = LatestGenerator(1000, seed=1)
        g.advance(1999)
        samples = [g.next() for _ in range(5000)]
        assert max(samples) == 1999
        assert sum(1 for s in samples if s > 1900) / len(samples) > 0.4

    def test_never_negative(self):
        g = LatestGenerator(5, seed=1)
        assert all(g.next() >= 0 for _ in range(1000))
