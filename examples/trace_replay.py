#!/usr/bin/env python3
"""Record a workload once, replay it everywhere.

Captures a mixed read/write session against SEALDB with the trace
recorder, saves it to a file, then replays the identical operation
stream against every store configuration -- the apples-to-apples way to
compare engines on *your* workload rather than a synthetic one.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import SMALL_PROFILE, make_store
from repro.workloads.generators import KeyValueGenerator
from repro.workloads.trace import (
    ChurnTraceGenerator,
    TraceRecorder,
    load_trace,
    replay,
    save_trace,
)


def main() -> None:
    profile = SMALL_PROFILE
    kv = KeyValueGenerator(profile.key_size, profile.value_size)

    # --- capture a session -------------------------------------------------
    recorder = TraceRecorder(make_store("sealdb", profile))
    churn = ChurnTraceGenerator(kv, working_set=800, drift=200,
                                ops_per_phase=1000, seed=11)
    for op in churn.generate(5000):       # writes and deletes
        if op.kind == "P":
            recorder.put(op.key, op.value or b"")
        else:
            recorder.delete(op.key)
    for i in range(500):                  # interleave some reads
        recorder.get(kv.scrambled_key(i * 3))
    recorder.flush()

    trace_path = Path(tempfile.gettempdir()) / "sealdb-session.trace"
    count = save_trace(recorder.trace, trace_path)
    print(f"recorded {count:,} operations -> {trace_path}")
    print()

    # --- replay against every configuration -------------------------------
    print(f"{'store':>14} {'ops/s':>10} {'WA':>7} {'AWA':>6} {'MWA':>7}")
    print("-" * 50)
    for kind in ("leveldb", "smrdb", "leveldb+sets", "sealdb", "zonekv"):
        store = make_store(kind, profile)
        result = replay(store, load_trace(trace_path))
        print(f"{store.name:>14} {result.ops_per_sec:>10,.0f} "
              f"{store.wa():>6.2f}x {store.awa():>5.2f}x {store.mwa():>6.2f}x")
    print()
    print("identical operations, five storage designs -- the spread is "
          "pure data-layout policy.")


if __name__ == "__main__":
    main()
