#!/usr/bin/env python3
"""A social graph on SEALDB: the LinkBench-style workload.

Builds a synthetic social graph (nodes + typed, timestamp-free links
under composite keys), then serves LinkBench's default read-heavy mix.
Composite key encoding makes "friends of node N" one contiguous scan --
the access pattern that rewards SEALDB's sequential layouts.

Run:  python examples/social_graph.py
"""

from repro import SMALL_PROFILE, make_store
from repro.harness.analysis import stats_string
from repro.workloads.linkbench import (
    LinkBenchWorkload,
    link_prefix,
    node_key,
)


def main() -> None:
    workload = LinkBenchWorkload(num_nodes=3000, links_per_node=4, seed=7)

    print(f"{'store':>10} {'load ops/s':>12} {'run ops/s':>12} {'MWA':>8}")
    print("-" * 48)
    stores = {}
    for kind in ("leveldb", "sealdb"):
        store = make_store(kind, SMALL_PROFILE)
        load = workload.load(store)
        run = workload.run(store, 2500)
        stores[kind] = store
        print(f"{store.name:>10} {load.ops_per_sec:>12,.0f} "
              f"{run.ops_per_sec:>12,.0f} {store.mwa():>7.2f}x")

    # poke at the graph through the raw KV API
    db = stores["sealdb"]
    print()
    hot = 0  # zipfian makes node 0 the celebrity
    print(f"node 0 profile bytes : {len(db.get(node_key(hot)) or b'')}")
    friends = list(db.scan(link_prefix(hot, 0),
                           link_prefix(hot, 0) + b"\xff", limit=10))
    print(f"node 0 type-0 links  : {len(friends)} (showing up to 10)")
    for key, _value in friends[:3]:
        print(f"   {key.decode()}")

    print()
    print(stats_string(db))


if __name__ == "__main__":
    main()
