#!/usr/bin/env python3
"""Serving a cloud workload: YCSB on SEALDB vs LevelDB.

The paper's intro motivates SEALDB with consolidated cloud serving
workloads on high-density drives.  This example loads a scaled database
and replays two contrasting YCSB mixes:

* workload A (50% read / 50% update, zipfian) -- update-heavy serving;
* workload C (100% read, zipfian) -- a read-only cache-miss path.

Run:  python examples/ycsb_cloud_workload.py
"""

from repro import SMALL_PROFILE, make_store
from repro.workloads import KeyValueGenerator, YCSBRunner, YCSB_WORKLOADS

MiB = 1024 * 1024
DB_BYTES = 3 * MiB
OPERATIONS = 1500


def main() -> None:
    profile = SMALL_PROFILE
    kv = KeyValueGenerator(profile.key_size, profile.value_size)
    record_count = profile.entries_for_bytes(DB_BYTES)

    print(f"records: {record_count:,}   operations per workload: {OPERATIONS:,}")
    print()
    print(f"{'store':>10} {'phase':>8} {'ops/s':>12} {'reads':>7} "
          f"{'updates':>8} {'hit rate':>9}")
    print("-" * 60)

    for kind in ("leveldb", "sealdb"):
        store = make_store(kind, profile)
        runner = YCSBRunner(kv, record_count, seed=3)
        load = runner.load(store)
        print(f"{store.name:>10} {'load':>8} {load.ops_per_sec:>12,.0f}")
        for name in ("A", "C"):
            r = runner.run(store, YCSB_WORKLOADS[name], OPERATIONS)
            hit_rate = r.read_hits / r.reads if r.reads else 0.0
            print(f"{store.name:>10} {name:>8} {r.ops_per_sec:>12,.0f} "
                  f"{r.reads:>7} {r.updates:>8} {hit_rate:>8.0%}")
        print(f"{'':>10} {'':>8} WA={store.wa():.1f}x AWA={store.awa():.2f}x "
              f"MWA={store.mwa():.1f}x")
        print()


if __name__ == "__main__":
    main()
