#!/usr/bin/env python3
"""Quickstart: SEALDB as a key-value store.

Opens a SEALDB instance on a simulated raw HM-SMR drive through the
public entry point (``repro.open``), performs the basic operations
(put / get / delete / scan), then peeks at the SMR-side bookkeeping the
paper is about: write amplification factors, the dynamic-band layout,
and the store's observability metrics.

Run:  python examples/quickstart.py
"""

import repro
from repro import SMALL_PROFILE


def main() -> None:
    with repro.open("sealdb", profile=SMALL_PROFILE) as db:
        print(db.describe())
        print()

        # --- basic operations -------------------------------------------
        db.put(b"user:0001", b"alice")
        db.put(b"user:0002", b"bob")
        db.put(b"user:0003", b"carol")
        print("get user:0002 ->", db.get(b"user:0002"))

        db.delete(b"user:0002")
        print("after delete  ->", db.get(b"user:0002"))

        # range scan over live keys
        print("scan user:*   ->",
              [(k.decode(), v.decode())
               for k, v in db.scan(b"user:", b"user;\xff")])

        # --- watch the store work through its event bus -------------------
        # Arming the bus turns on the metrics registry (latency
        # histograms, band/compaction counters); subscribe() would also
        # deliver the typed events themselves.
        db.obs.arm()

        for i in range(20_000):
            db.put(b"key%012d" % (i * 7919 % 20_000), b"payload-%d" % i)
        db.flush()

        m = db.obs.metrics
        put_p99 = m.histograms["latency.put"].percentile(99)
        print()
        print(f"simulated time elapsed : {db.now:8.2f} s")
        print(f"puts                   : {db.stats.puts:,}")
        print(f"put p99 latency        : {put_p99 * 1e3:.3f} ms")
        print(f"flushes                : {len(db.db.flush_records):,}")
        print(f"compactions            : {len(db.real_compactions()):,}")
        print(f"WA  (LSM-tree)         : {db.wa():.2f}x")
        print(f"AWA (SMR drive)        : {db.awa():.2f}x   "
              f"<- dynamic bands keep this at 1")
        print(f"MWA (overall)          : {db.mwa():.2f}x")

        bands = db.band_manager.bands()
        print(f"dynamic bands          : {len(bands)} "
              f"(sizes {min(b.length for b in bands) // 1024} KiB .. "
              f"{max(b.length for b in bands) // 1024} KiB)")
        print(f"average set size       : {db.average_set_size() / 1024:.1f} KiB")

        # point reads still work after all that churn
        assert db.get(b"key%012d" % 0) is not None
        print("\nread-back OK")


if __name__ == "__main__":
    main()
