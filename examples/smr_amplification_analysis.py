#!/usr/bin/env python3
"""Why LSM-trees hurt on SMR drives -- and how SEALDB fixes it.

Reproduces the paper's motivation (Section II-C) in miniature: the same
random load is applied to stock LevelDB (ext4 over a fixed-band SMR
drive) and to SEALDB (sets + dynamic bands on a raw HM-SMR drive), and
the script compares:

* the Table I amplification chain WA -> AWA -> MWA;
* how far one compaction's I/O is scattered across the disk;
* throughput on the simulated clock.

Run:  python examples/smr_amplification_analysis.py
"""

from repro import SMALL_PROFILE, make_store
from repro.harness.metrics import (
    compaction_span,
    contiguous_output_fraction,
    summarize_compactions,
)
from repro.workloads import KeyValueGenerator, MicroBenchmark

MiB = 1024 * 1024
DB_BYTES = 3 * MiB


def analyze(kind: str):
    profile = SMALL_PROFILE
    store = make_store(kind, profile)
    kv = KeyValueGenerator(profile.key_size, profile.value_size)
    bench = MicroBenchmark(kv, profile.entries_for_bytes(DB_BYTES), seed=7)
    result = bench.fill_random(store)

    records = store.real_compactions()
    summary = summarize_compactions(records)
    spans = [compaction_span(r) for r in records]
    return {
        "store": store.name,
        "ops_per_sec": result.ops_per_sec,
        "wa": store.wa(),
        "awa": store.awa(),
        "mwa": store.mwa(),
        "compactions": summary.count,
        "avg_latency": summary.avg_latency,
        "mean_span_kib": (sum(spans) / len(spans) / 1024) if spans else 0,
        "contiguous": contiguous_output_fraction(store),
        "rmw": store.drive.stats.rmw_count,
    }


def main() -> None:
    rows = [analyze("leveldb"), analyze("sealdb")]
    header = (f"{'':>22}" + "".join(f"{r['store']:>14}" for r in rows))
    print(header)
    print("-" * len(header))
    fmt = [
        ("random-load ops/s", "ops_per_sec", "{:,.0f}"),
        ("WA  (LSM)", "wa", "{:.2f}x"),
        ("AWA (SMR drive)", "awa", "{:.2f}x"),
        ("MWA (overall)", "mwa", "{:.2f}x"),
        ("compactions", "compactions", "{:d}"),
        ("avg compaction (s)", "avg_latency", "{:.2f}"),
        ("compaction span (KiB)", "mean_span_kib", "{:,.0f}"),
        ("contiguous outputs", "contiguous", "{:.0%}"),
        ("band read-mod-writes", "rmw", "{:d}"),
    ]
    for label, key, pattern in fmt:
        print(f"{label:>22}" + "".join(
            f"{pattern.format(r[key]):>14}" for r in rows))

    lvl, seal = rows
    print()
    print(f"SEALDB random-write speedup : "
          f"{seal['ops_per_sec'] / lvl['ops_per_sec']:.2f}x  (paper: 3.42x)")
    print(f"SEALDB MWA reduction        : "
          f"{lvl['mwa'] / seal['mwa']:.2f}x  (paper: 6.70x)")


if __name__ == "__main__":
    main()
