#!/usr/bin/env python3
"""Crash recovery: WAL replay and manifest reload on SEALDB.

The engine persists three things on the simulated drive: table data
(through dynamic bands), a manifest log of version edits, and a
write-ahead log of not-yet-flushed updates.  This example writes a
batch of data, "crashes" (drops all in-memory state), recovers from the
drive, and verifies nothing is lost -- including updates that only ever
lived in the WAL.

Run:  python examples/crash_recovery.py
"""

import repro
from repro import SMALL_PROFILE


def main() -> None:
    db = repro.open("sealdb", profile=SMALL_PROFILE)

    # enough data that tables, manifest entries, and compactions exist
    for i in range(5000):
        db.put(b"stable%08d" % i, b"value-%d" % i)

    # a few updates that have NOT been flushed: they exist only in the WAL
    db.put(b"wal-only-1", b"survives")
    db.put(b"wal-only-2", b"also survives")
    db.delete(b"stable%08d" % 42)

    tables_before = db.db.versions.current.num_files()
    seq_before = db.db.last_sequence
    puts_before = db.stats.puts
    print(f"before crash: {tables_before} tables, sequence {seq_before:,}")

    # --- crash ------------------------------------------------------------
    # Drop every in-memory structure; only the simulated drive survives.
    # reopen() returns the store itself, so recovery chains naturally.
    db = db.reopen()

    print(f"after recovery: {db.db.versions.current.num_files()} tables, "
          f"sequence {db.db.last_sequence:,}")
    assert db.db.last_sequence == seq_before

    # operation counters live on the facade, so they survive recovery too
    assert db.stats.puts == puts_before

    # flushed data, WAL-only data, and WAL-only deletes all recovered
    assert db.get(b"stable%08d" % 7) == b"value-7"
    assert db.get(b"wal-only-1") == b"survives"
    assert db.get(b"wal-only-2") == b"also survives"
    assert db.get(b"stable%08d" % 42) is None
    print("all WAL-only updates and deletes recovered")

    # and the store keeps working
    db.put(b"post-crash", b"fine")
    assert db.get(b"post-crash") == b"fine"
    scanned = sum(1 for _ in db.scan(b"stable", b"stablf"))
    print(f"scan after recovery sees {scanned:,} stable keys")


if __name__ == "__main__":
    main()
