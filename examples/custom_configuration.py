#!/usr/bin/env python3
"""Build your own store: mixing drives, placement policies, and engines.

The facade classes cover the paper's configurations, but every layer is
a public building block.  This example assembles two custom stacks:

1. a *conservative* SEALDB variant -- doubled guard regions (for a
   drive with wider shingle overlap) and the paper's aggressive
   invalid-set-first victim policy;
2. a *shallow* variant -- a 3-level tree on the same dynamic bands,
   trading write amplification against compaction size.

Both are compared against stock SEALDB on the same random load.

Run:  python examples/custom_configuration.py
"""

from repro import SMALL_PROFILE
from repro.core.storage import DynamicBandStorage
from repro.kvstore import KVStoreBase
from repro.smr.geometry import TrackGeometry
from repro.smr.raw_hmsmr import RawHMSMRDrive
from repro.smr.timing import SMR_PROFILE
from repro.workloads import KeyValueGenerator, MicroBenchmark


def build_custom(name: str, *, guard_tracks: int = 2, levels: int = 7,
                 victim_policy: str = "pointer") -> KVStoreBase:
    profile = SMALL_PROFILE
    geometry = TrackGeometry.for_guard(profile.guard_size,
                                       shingle_overlap_tracks=2)
    guard = geometry.track_bytes * guard_tracks
    drive = RawHMSMRDrive(profile.capacity, guard_size=guard,
                          profile=SMR_PROFILE.scaled(profile.io_scale))
    storage = DynamicBandStorage(drive, wal_size=profile.wal_region,
                                 meta_size=profile.meta_region,
                                 class_unit=profile.sstable_size)
    options = profile.options(use_sets=True, max_levels=levels,
                              victim_policy=victim_policy)
    store = KVStoreBase(drive, storage, options)
    store.name = name
    return store


def main() -> None:
    profile = SMALL_PROFILE
    kv = KeyValueGenerator(profile.key_size, profile.value_size)
    entries = profile.entries_for_bytes(2 * 1024 * 1024)

    configs = [
        build_custom("stock", guard_tracks=2),
        build_custom("wide-guard", guard_tracks=4,
                     victim_policy="invalid-set-first"),
        build_custom("shallow-3L", levels=3),
    ]

    print(f"{'config':>12} {'randW ops/s':>12} {'WA':>7} {'frag KiB':>9} "
          f"{'footprint KiB':>14}")
    print("-" * 60)
    for store in configs:
        bench = MicroBenchmark(kv, entries, seed=3)
        result = bench.fill_random(store)
        manager = store.storage.manager
        avg_set = store.storage.sets.average_set_size()
        fragments = sum(
            f.length for f in manager.fragments(int(avg_set) or 1))
        print(f"{store.name:>12} {result.ops_per_sec:>12,.0f} "
              f"{store.wa():>6.2f}x {fragments / 1024:>9,.0f} "
              f"{manager.occupied_bytes() / 1024:>14,.0f}")

    print()
    print("wider guards waste more of each freed region; a shallower tree")
    print("trades fewer levels for heavier individual compactions.")


if __name__ == "__main__":
    main()
