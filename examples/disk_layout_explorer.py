#!/usr/bin/env python3
"""Watch dynamic bands evolve on the shingled surface.

Loads a SEALDB instance in stages and, after each stage, draws the disk
as a one-line map -- allocated sets (#), free regions (.), and the
not-yet-banded residual space ( ) -- plus the free-space-list contents.
Finishes with a fragment-GC pass so the reclamation is visible.

Run:  python examples/disk_layout_explorer.py
"""

from repro import SealDB, SMALL_PROFILE
from repro.harness.plotting import disk_layout_map
from repro.workloads.generators import KeyValueGenerator, scramble32

KiB = 1024
STAGES = 5
ENTRIES_PER_STAGE = 4000


def draw(db: SealDB, label: str) -> None:
    manager = db.band_manager
    extents = [(0, db.storage.data_start, "H")]            # wal/meta regions
    extents += [(e.start, e.end, "#") for e in manager.allocated]
    extents += [(r.start, r.end, ".") for r in manager.free_list.regions()]
    # zoom the map to the banded area; the rest of the disk is untouched
    window = int(manager.tail * 1.05) or db.drive.capacity
    print(disk_layout_map(extents, window, width=92, title=label))
    frag = sum(f.length for f in db.fragments())
    print(f"  bands={len(manager.bands())}  live={manager.allocated_bytes() // KiB} KiB"
          f"  free={manager.free_bytes() // KiB} KiB"
          f"  fragments={frag // KiB} KiB  tail={manager.tail // KiB} KiB")
    print()


def main() -> None:
    db = SealDB(SMALL_PROFILE)
    kv = KeyValueGenerator(SMALL_PROFILE.key_size, SMALL_PROFILE.value_size)
    print("legend: H = wal/meta regions, # = live sets, . = free, "
          "(blank) = unwritten\n")

    for stage in range(STAGES):
        base = stage * ENTRIES_PER_STAGE
        for i in range(base, base + ENTRIES_PER_STAGE):
            index = scramble32(i) % (STAGES * ENTRIES_PER_STAGE)
            db.put(kv.key(index), kv.value(index))
        db.flush()
        draw(db, f"after stage {stage + 1} "
                 f"({(stage + 1) * ENTRIES_PER_STAGE:,} puts)")

    moves, rewritten = db.collect_fragments(max_moves=64)
    draw(db, f"after fragment GC ({moves} sets relocated, "
             f"{rewritten // KiB} KiB rewritten)")

    print(f"WA={db.wa():.2f}x  AWA={db.awa():.2f}x  MWA={db.mwa():.2f}x  "
          f"(AWA stays 1.0 -- GC traffic is honest table I/O, it raises "
          f"device bytes, shown here separately)")


if __name__ == "__main__":
    main()
